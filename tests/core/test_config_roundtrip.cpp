// Round-trip property of the TasdConfig text form: parse(str(c)) == c
// for every well-formed config, str(parse(s)) == s for every canonical
// string, the "<empty>" rendering of an order-0 config is display-only
// (not parseable), and malformed inputs throw with messages that name
// the offending input.
#include "core/config.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace tasd {
namespace {

TEST(TasdConfigRoundtrip, ParseOfStrIsIdentityOnRandomConfigs) {
  Rng rng(31337);
  const std::vector<int> ms{2, 4, 8, 16, 32};
  for (int trial = 0; trial < 200; ++trial) {
    const auto order = static_cast<std::size_t>(rng.uniform_int(1, 4));
    std::vector<sparse::NMPattern> terms;
    for (std::size_t t = 0; t < order; ++t) {
      const int m = ms[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(ms.size()) - 1))];
      // n = 0 ("keep nothing") is a legal pattern and must round-trip.
      const int n = static_cast<int>(rng.uniform_int(0, m));
      terms.emplace_back(n, m);
    }
    const TasdConfig cfg(terms);
    const std::string text = cfg.str();
    EXPECT_EQ(TasdConfig::parse(text), cfg) << "text: " << text;
  }
}

TEST(TasdConfigRoundtrip, StrOfParseIsIdentityOnCanonicalStrings) {
  for (const std::string s :
       {"2:4", "4:8+1:8", "2:4+2:8+2:16", "0:4", "16:16", "1:32+0:2"}) {
    EXPECT_EQ(TasdConfig::parse(s).str(), s);
  }
}

TEST(TasdConfigRoundtrip, EmptyRenderingIsDisplayOnly) {
  // An order-0 config renders as "<empty>", which is deliberately not
  // parseable input — round-tripping it must fail loudly, not produce a
  // config silently.
  const TasdConfig empty;
  EXPECT_EQ(empty.str(), "<empty>");
  try {
    (void)TasdConfig::parse(empty.str());
    FAIL() << "parse(\"<empty>\") must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("<empty>"), std::string::npos)
        << "message should name the offending input: " << e.what();
  }
}

TEST(TasdConfigRoundtrip, MalformedInputsThrowWithContext) {
  // Every message must carry the full config text so a user who fed a
  // bad series string can see which one.
  for (const std::string bad :
       {"", "2:4+", "+2:4", "2:4++1:8", "garbage", "2:", ":4", "2:4+junk",
        "5:4", "-1:4", "2:4 + 2:8"}) {
    try {
      (void)TasdConfig::parse(bad);
      FAIL() << "parse must reject '" << bad << "'";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(bad), std::string::npos)
          << "message for '" << bad << "' lacks the input: " << e.what();
    }
  }
}

TEST(TasdConfigRoundtrip, MalformedTermMessageNamesTermPosition) {
  try {
    (void)TasdConfig::parse("2:4+banana+1:8");
    FAIL() << "parse must reject the malformed middle term";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("term 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("banana"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace tasd
