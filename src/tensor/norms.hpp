// Norms and matrix comparison metrics used by the approximation-error
// experiments (paper Appendix A).
#pragma once

#include "tensor/matrix.hpp"

namespace tasd {

/// Frobenius norm sqrt(sum of squares).
double frobenius_norm(const MatrixF& m);

/// Sum of |element| over the matrix (the paper's "sum of magnitudes").
double magnitude_sum(const MatrixF& m);

/// Plain element sum.
double element_sum(const MatrixF& m);

/// Mean squared error between two same-shape matrices.
double mse(const MatrixF& a, const MatrixF& b);

/// Relative Frobenius error ||a - b|| / ||a||; returns 0 when both are
/// zero matrices, and infinity when only `a` is zero.
double relative_frobenius_error(const MatrixF& a, const MatrixF& b);

/// True if all elements differ by at most atol + rtol*|reference|.
bool allclose(const MatrixF& a, const MatrixF& b, double rtol = 1e-5,
              double atol = 1e-6);

}  // namespace tasd
