// Defining your own structured sparse design point and evaluating it
// with TASDER — what a hardware architect would do with this library.
//
// We sketch a hypothetical "TTC-M16" engine with {2:16, 4:16, 8:16}
// support and 3 TASD terms, and compare it against the paper's designs
// on the four evaluation workloads.
//
//   build/examples/custom_accelerator
#include <iostream>

#include "accel/network_sim.hpp"
#include "accel/tasd_unit.hpp"
#include "common/table.hpp"
#include "core/series_enum.hpp"
#include "dnn/workloads.hpp"
#include "tasder/workload_opt.hpp"

using namespace tasd;

int main() {
  print_banner("Custom design point: TTC-M16 with 3-term TASD");

  // 1. Describe the hardware.
  accel::ArchConfig m16;
  m16.name = "TTC-M16";
  m16.kind = accel::HwKind::kTTC;
  m16.supported_patterns = {sparse::NMPattern(2, 16),
                            sparse::NMPattern(4, 16),
                            sparse::NMPattern(8, 16)};
  m16.max_tasd_terms = 3;
  m16.has_tasd_units = true;
  // Wider blocks need more decomposition cycles per block: check the
  // TASD-unit provisioning before committing (Little's law, Fig. 10).
  m16.tasd_units_per_engine = 16;
  {
    const auto worst = TasdConfig::parse("8:16+4:16+2:16");
    const auto unit = accel::tasd_unit_model(m16, worst);
    std::cout << "worst-case series " << worst.str() << ": needs "
              << unit.required_units << " TASD units/engine, stall factor "
              << unit.stall_factor() << "\n";
  }

  // 2. What can it express? (Table 2 for this design.)
  {
    const auto reachable =
        reachable_effective_n(m16.supported_patterns, m16.max_tasd_terms, 16);
    std::cout << "reachable effective N:16 patterns:";
    for (int n : reachable) std::cout << ' ' << n;
    std::cout << " of 16\n";
  }

  // 3. Evaluate against the paper's designs.
  TextTable t;
  t.header({"workload", "TTC-STC-M4", "TTC-VEGETA-M8", "TTC-M16 (custom)"});
  const std::vector<dnn::NetworkWorkload> workloads = {
      dnn::resnet50_workload(false, 42), dnn::bert_workload(false, 42),
      dnn::resnet50_workload(true, 42), dnn::bert_workload(true, 42)};
  for (const auto& net : workloads) {
    const auto base = accel::simulate_network(
        accel::ArchConfig::dense_tc(), tasder::plain_executions(net),
        net.name);
    auto edp = [&](const accel::ArchConfig& arch) {
      const auto execs =
          tasder::optimize_workload(net, tasder::hw_profile_from(arch));
      return accel::normalized_edp(
          accel::simulate_network(arch, execs, net.name), base);
    };
    t.row({net.name, TextTable::num(edp(accel::ArchConfig::ttc_stc_m4()), 3),
           TextTable::num(edp(accel::ArchConfig::ttc_vegeta_m8()), 3),
           TextTable::num(edp(m16), 3)});
  }
  t.print();
  std::cout << "\nTake-away: wider blocks + more terms buy finer density "
               "granularity (more\nconfigs between 12.5% and 87.5%), at "
               "the cost of deeper comparator trees and\nlonger "
               "decomposition pipelines — the trade the paper's Table 3 "
               "spans.\n";
  return 0;
}
