#include "core/series_enum.hpp"

#include <gtest/gtest.h>

namespace tasd {
namespace {

std::vector<sparse::NMPattern> vegeta_m8() {
  return {sparse::NMPattern(1, 8), sparse::NMPattern(2, 8),
          sparse::NMPattern(4, 8)};
}

TEST(SeriesEnum, VegetaM8Table2Coverage) {
  // Paper Table 2: with <= 2 terms, {1,2,4}:8 support reaches effective
  // N:8 for N in {1,2,3,4,5,6} — 7:8 is unreachable; 8:8 is dense.
  const auto reachable = reachable_effective_n(vegeta_m8(), 2, 8);
  EXPECT_EQ(reachable, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(SeriesEnum, Table2SpecificSeries) {
  // 3:8 = 2:8 + 1:8, 5:8 = 4:8 + 1:8, 6:8 = 4:8 + 2:8 (Table 2 rows).
  auto c3 = config_for_effective_pattern(vegeta_m8(), 2, 3, 8);
  ASSERT_TRUE(c3);
  EXPECT_EQ(c3->str(), "2:8+1:8");
  auto c5 = config_for_effective_pattern(vegeta_m8(), 2, 5, 8);
  ASSERT_TRUE(c5);
  EXPECT_EQ(c5->str(), "4:8+1:8");
  auto c6 = config_for_effective_pattern(vegeta_m8(), 2, 6, 8);
  ASSERT_TRUE(c6);
  EXPECT_EQ(c6->str(), "4:8+2:8");
}

TEST(SeriesEnum, SingleTermPreferredWhenExact) {
  auto c4 = config_for_effective_pattern(vegeta_m8(), 2, 4, 8);
  ASSERT_TRUE(c4);
  EXPECT_EQ(c4->str(), "4:8");  // not 2:8+2:8 (same pattern reuse barred)
}

TEST(SeriesEnum, SevenEighthsUnreachable) {
  EXPECT_FALSE(config_for_effective_pattern(vegeta_m8(), 2, 7, 8));
}

TEST(SeriesEnum, EnumerationSortedMostAggressiveFirst) {
  const auto configs = enumerate_configs(vegeta_m8(), 2);
  for (std::size_t i = 1; i < configs.size(); ++i)
    EXPECT_LE(configs[i - 1].max_density(), configs[i].max_density());
}

TEST(SeriesEnum, EnumerationCountsForVegeta) {
  // 3 singles + C(3,2)=3 two-term combos = 6 configs.
  EXPECT_EQ(enumerate_configs(vegeta_m8(), 2).size(), 6u);
  EXPECT_EQ(enumerate_configs(vegeta_m8(), 1).size(), 3u);
  // Full power set minus empty with 3 terms allowed.
  EXPECT_EQ(enumerate_configs(vegeta_m8(), 3).size(), 7u);
}

TEST(SeriesEnum, STCStyleSinglePattern) {
  const std::vector<sparse::NMPattern> stc{sparse::NMPattern(2, 4)};
  const auto configs = enumerate_configs(stc, 1);
  ASSERT_EQ(configs.size(), 1u);
  EXPECT_EQ(configs[0].str(), "2:4");
  EXPECT_FALSE(config_for_effective_pattern(stc, 1, 1, 4));
  EXPECT_TRUE(config_for_effective_pattern(stc, 1, 2, 4));
}

TEST(SeriesEnum, MixedBlockSizesUseExactRationalMatch) {
  // 2:4 + 2:8 = 0.75 density = effective 6:8.
  const std::vector<sparse::NMPattern> mixed{sparse::NMPattern(2, 4),
                                             sparse::NMPattern(2, 8)};
  auto c = config_for_effective_pattern(mixed, 2, 6, 8);
  ASSERT_TRUE(c);
  EXPECT_EQ(c->str(), "2:4+2:8");
  // And effective 3:4 is the same density — also reachable.
  EXPECT_TRUE(config_for_effective_pattern(mixed, 2, 3, 4));
}

TEST(SeriesEnum, InvalidArgsRejected) {
  EXPECT_THROW(enumerate_configs(vegeta_m8(), 0), Error);
  EXPECT_THROW(config_for_effective_pattern(vegeta_m8(), 2, 9, 8), Error);
}

TEST(SeriesEnum, TermsOrderedDensestFirst) {
  for (const auto& cfg : enumerate_configs(vegeta_m8(), 2)) {
    for (std::size_t i = 1; i < cfg.terms.size(); ++i)
      EXPECT_GE(cfg.terms[i - 1].density(), cfg.terms[i].density());
  }
}

}  // namespace
}  // namespace tasd
