#include "dnn/layers.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/generator.hpp"

namespace tasd::dnn {
namespace {

Tensor4D input_tensor(Index n, Index c, Index hw, std::uint64_t seed) {
  Rng rng(seed);
  return random_tensor(n, c, hw, hw, 1.0, Dist::kNormalStd1, rng);
}

TEST(Conv2dLayer, OutputShape) {
  Rng rng(101);
  auto conv = make_conv(3, 8, 3, 1, 1, ActKind::kRelu, rng);
  const Feature out = conv->forward(Feature(input_tensor(2, 3, 8, 1)));
  ASSERT_TRUE(out.is_tensor());
  EXPECT_EQ(out.tensor().n(), 2u);
  EXPECT_EQ(out.tensor().c(), 8u);
  EXPECT_EQ(out.tensor().h(), 8u);
  EXPECT_EQ(out.tensor().w(), 8u);
}

TEST(Conv2dLayer, StrideHalvesResolution) {
  Rng rng(102);
  auto conv = make_conv(3, 4, 3, 2, 1, ActKind::kRelu, rng);
  const Feature out = conv->forward(Feature(input_tensor(1, 3, 8, 2)));
  EXPECT_EQ(out.tensor().h(), 4u);
}

TEST(Conv2dLayer, ReluProducesActivationSparsity) {
  Rng rng(103);
  auto conv = make_conv(4, 16, 3, 1, 1, ActKind::kRelu, rng);
  const Feature out = conv->forward(Feature(input_tensor(2, 4, 8, 3)));
  // Batch-normalized pre-activations are ~zero-centred: ReLU should zero
  // roughly half the outputs.
  EXPECT_GT(out.sparsity(), 0.3);
  EXPECT_LT(out.sparsity(), 0.7);
}

TEST(Conv2dLayer, GeluProducesDenseActivations) {
  Rng rng(104);
  auto conv = make_conv(4, 16, 3, 1, 1, ActKind::kGelu, rng);
  const Feature out = conv->forward(Feature(input_tensor(2, 4, 8, 4)));
  EXPECT_LT(out.sparsity(), 0.05);
}

TEST(Conv2dLayer, RecordsGemmStats) {
  Rng rng(105);
  auto conv = make_conv(3, 8, 3, 1, 1, ActKind::kRelu, rng);
  (void)conv->forward(Feature(input_tensor(2, 3, 8, 5)));
  const auto& s = conv->stats();
  EXPECT_EQ(s.dims.m, 8u);
  EXPECT_EQ(s.dims.k, 27u);
  EXPECT_EQ(s.dims.n, 8u * 8u * 2u);
  EXPECT_EQ(s.forward_count, 1u);
  // Dense random input, but im2col padding contributes structural zeros.
  EXPECT_GT(s.input_density, 0.8);
}

TEST(Conv2dLayer, TasdWReducesWeightNnz) {
  Rng rng(106);
  auto conv = make_conv(8, 8, 1, 1, 0, ActKind::kNone, rng);
  const Index dense_nnz = conv->weight().nnz();
  conv->set_tasd_w(TasdConfig::parse("2:8"));
  EXPECT_LE(conv->effective_weight().nnz(), dense_nnz / 2);
  conv->set_tasd_w(std::nullopt);
  EXPECT_EQ(conv->effective_weight().nnz(), dense_nnz);
}

TEST(Conv2dLayer, TasdACutsInputDensity) {
  Rng rng(107);
  auto conv = make_conv(8, 4, 1, 1, 0, ActKind::kNone, rng);
  conv->set_tasd_a(TasdConfig::parse("2:8"));
  (void)conv->forward(Feature(input_tensor(1, 8, 4, 6)));
  // 2:8 keeps at most 25 % of the activation operand.
  EXPECT_LE(conv->stats().input_density, 0.25 + 1e-9);
  EXPECT_GT(conv->stats().raw_input_density, 0.9);
}

TEST(Conv2dLayer, SetWeightPreservesShapeContract) {
  Rng rng(108);
  auto conv = make_conv(3, 4, 3, 1, 1, ActKind::kNone, rng);
  EXPECT_THROW(conv->set_weight(MatrixF(4, 5)), tasd::Error);
  EXPECT_NO_THROW(conv->set_weight(MatrixF(4, 27)));
}

TEST(LinearLayer, ComputesActWX) {
  MatrixF w(2, 2, {1, 0, 0, 1});
  LinearLayer l(std::move(w), ActKind::kRelu);
  MatrixF x(2, 1, {3.0F, -2.0F});
  const Feature out = l.forward(Feature(std::move(x)));
  EXPECT_EQ(out.matrix()(0, 0), 3.0F);
  EXPECT_EQ(out.matrix()(1, 0), 0.0F);  // ReLU clipped
}

TEST(LinearLayer, InputFeatureMismatchThrows) {
  Rng rng(109);
  auto l = make_linear(8, 4, ActKind::kNone, rng);
  EXPECT_THROW(l->forward(Feature(MatrixF(5, 2))), tasd::Error);
}

TEST(ActLayer, WorksOnBothShapes) {
  ActLayer relu(ActKind::kRelu);
  MatrixF m(1, 2, {-1.0F, 2.0F});
  const Feature fm = relu.forward(Feature(std::move(m)));
  EXPECT_EQ(fm.matrix()(0, 0), 0.0F);

  Tensor4D t(1, 1, 1, 2);
  t(0, 0, 0, 0) = -4.0F;
  t(0, 0, 0, 1) = 4.0F;
  const Feature ft = relu.forward(Feature(std::move(t)));
  EXPECT_EQ(ft.tensor()(0, 0, 0, 0), 0.0F);
  EXPECT_EQ(ft.tensor()(0, 0, 0, 1), 4.0F);
}

TEST(MaxPool2, TakesBlockMaximum) {
  Tensor4D t(1, 1, 2, 2);
  t(0, 0, 0, 0) = 1.0F;
  t(0, 0, 0, 1) = 5.0F;
  t(0, 0, 1, 0) = -2.0F;
  t(0, 0, 1, 1) = 0.5F;
  MaxPool2Layer pool;
  const Feature out = pool.forward(Feature(std::move(t)));
  EXPECT_EQ(out.tensor()(0, 0, 0, 0), 5.0F);
}

TEST(GlobalAvgPool, AveragesSpatially) {
  Tensor4D t(2, 3, 2, 2);
  for (Index n = 0; n < 2; ++n)
    for (Index c = 0; c < 3; ++c)
      for (Index i = 0; i < 4; ++i)
        t(n, c, i / 2, i % 2) = static_cast<float>(c + 1);
  GlobalAvgPoolLayer pool;
  const Feature out = pool.forward(Feature(std::move(t)));
  ASSERT_FALSE(out.is_tensor());
  EXPECT_EQ(out.matrix().rows(), 3u);
  EXPECT_EQ(out.matrix().cols(), 2u);
  EXPECT_FLOAT_EQ(out.matrix()(2, 1), 3.0F);
}

TEST(ResBlock, IdentitySkipAddsInput) {
  Rng rng(110);
  std::vector<std::unique_ptr<Layer>> branch;
  branch.push_back(make_conv(4, 4, 1, 1, 0, ActKind::kNone, rng));
  ResBlockLayer block(std::move(branch), nullptr, ActKind::kRelu);
  const Feature out = block.forward(Feature(input_tensor(1, 4, 4, 7)));
  EXPECT_EQ(out.tensor().c(), 4u);
  // ReLU output: non-negative everywhere.
  for (float v : out.tensor().flat()) EXPECT_GE(v, 0.0F);
}

TEST(ResBlock, CollectsNestedGemmLayers) {
  Rng rng(111);
  std::vector<std::unique_ptr<Layer>> branch;
  branch.push_back(make_conv(4, 8, 1, 1, 0, ActKind::kRelu, rng));
  branch.push_back(make_conv(8, 8, 3, 1, 1, ActKind::kNone, rng));
  auto proj = make_conv(4, 8, 1, 1, 0, ActKind::kNone, rng);
  ResBlockLayer block(std::move(branch), std::move(proj), ActKind::kRelu);
  std::vector<GemmLayer*> gemms;
  block.collect_gemm_layers(gemms);
  EXPECT_EQ(gemms.size(), 3u);
}

TEST(ToTokens, FlattensSpatialToTokens) {
  Tensor4D t(2, 3, 2, 2);
  t(1, 2, 1, 1) = 7.0F;
  ToTokensLayer layer;
  const Feature out = layer.forward(Feature(std::move(t)));
  EXPECT_EQ(out.matrix().rows(), 3u);
  EXPECT_EQ(out.matrix().cols(), 8u);  // 2 batch * 2 * 2 positions
  EXPECT_EQ(out.matrix()(2, 7), 7.0F);
}

}  // namespace
}  // namespace tasd::dnn
