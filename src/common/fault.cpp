#include "common/fault.hpp"

#include <chrono>
#include <new>
#include <random>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/sync.hpp"

namespace tasd::fault {

namespace {

struct Armed {
  int token = 0;
  Spec spec;
  std::mt19937_64 engine;
  std::size_t hits = 0;
  std::size_t fires = 0;
};

struct Registry {
  Mutex mutex;
  std::vector<Armed> armed TASD_GUARDED_BY(mutex);
  int next_token TASD_GUARDED_BY(mutex) = 1;
};

Registry& registry() {
  static Registry r;
  return r;
}

// Fast-path gate: number of armed specs. inject() returns after one
// relaxed load when it is zero, so instrumented hot paths stay hot.
//
// Memory-ordering contract: relaxed is sufficient on both sides. The
// atomic is purely an optimization gate, never the source of truth —
// every decision about *which* faults fire is re-derived under
// Registry::mutex, whose acquire/release ordering publishes the armed
// specs. The only consequence of the relaxed load is that an inject()
// racing an arm()/disarm() on another thread may take the fast path
// (or the slow path and find nothing matching) for a brief window;
// arming is not a synchronization point, and tests that need exact
// schedules arm before driving the threads they observe. Written only
// under Registry::mutex, so read-modify-write atomicity is not needed
// either.
std::atomic<int> g_armed_count{0};

bool matches(const Spec& spec, std::string_view site,
             std::string_view detail) {
  if (!spec.site.empty() && site.find(spec.site) == std::string_view::npos)
    return false;
  if (!spec.detail.empty() &&
      detail.find(spec.detail) == std::string_view::npos)
    return false;
  return true;
}

}  // namespace

int arm(Spec spec) {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  Armed a;
  a.token = r.next_token++;
  a.engine.seed(spec.seed);
  a.spec = std::move(spec);
  r.armed.push_back(std::move(a));
  g_armed_count.store(static_cast<int>(r.armed.size()),
                      std::memory_order_relaxed);
  return r.armed.back().token;
}

void disarm(int token) {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  for (std::size_t i = 0; i < r.armed.size(); ++i) {
    if (r.armed[i].token == token) {
      r.armed.erase(r.armed.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  g_armed_count.store(static_cast<int>(r.armed.size()),
                      std::memory_order_relaxed);
}

void disarm_all() {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  r.armed.clear();
  g_armed_count.store(0, std::memory_order_relaxed);
}

std::size_t hit_count(int token) {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  for (const auto& a : r.armed)
    if (a.token == token) return a.hits;
  return 0;
}

std::size_t fire_count(int token) {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  for (const auto& a : r.armed)
    if (a.token == token) return a.fires;
  return 0;
}

bool any_armed() {
  return g_armed_count.load(std::memory_order_relaxed) != 0;
}

void inject(std::string_view site, std::string_view detail) {
  if (g_armed_count.load(std::memory_order_relaxed) == 0) return;

  // Decide under the lock, act after releasing it: a kDelay fire must
  // not stall other threads' inject() calls, and a throw must not leave
  // the registry locked.
  int delay_us = 0;
  bool do_throw = false;
  bool do_bad_alloc = false;
  std::string message;
  {
    Registry& r = registry();
    MutexLock lock(r.mutex);
    for (auto& a : r.armed) {
      if (!matches(a.spec, site, detail)) continue;
      ++a.hits;
      if (a.fires >= a.spec.max_fires) continue;
      if (a.spec.probability < 1.0) {
        std::bernoulli_distribution fire(a.spec.probability);
        if (!fire(a.engine)) continue;
      }
      ++a.fires;
      switch (a.spec.kind) {
        case Kind::kDelay:
          delay_us += a.spec.delay_us;
          break;
        case Kind::kThrow:
          if (!do_throw && !do_bad_alloc) {
            do_throw = true;
            message = a.spec.message;
          }
          break;
        case Kind::kBadAlloc:
          if (!do_throw && !do_bad_alloc) do_bad_alloc = true;
          break;
      }
    }
  }

  if (delay_us > 0)
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  if (do_bad_alloc) throw std::bad_alloc();
  if (do_throw) {
    std::string what = message;
    what += " [site=";
    what.append(site);
    if (!detail.empty()) {
      what += ", detail=";
      what.append(detail);
    }
    what += ']';
    throw Error(Error::Code::kInternal, what);
  }
}

}  // namespace tasd::fault
