// Multi-head self-attention for the transformer substrate.
//
// Operates on (features x tokens) matrices. Q/K/V/output projections are
// GemmLayers so TASD-W can decompose their (pruned) weights; TASD-A is
// disabled on them per the paper's finding that only the MLP FCs keep
// quality (§4.3, Fig. 8).
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "dnn/layers.hpp"

namespace tasd::dnn {

/// Pre-LN multi-head self-attention with residual connection:
/// out = x + Wo * Attention(Wq x, Wk x, Wv x).
class AttentionLayer final : public Layer {
 public:
  AttentionLayer(Index dim, Index heads, Rng& rng);

  Feature forward(const Feature& in) override;
  void collect_gemm_layers(std::vector<GemmLayer*>& out) override;

  [[nodiscard]] Index dim() const { return dim_; }
  [[nodiscard]] Index heads() const { return heads_; }

 private:
  Index dim_;
  Index heads_;
  std::unique_ptr<LinearLayer> wq_, wk_, wv_, wo_;
};

/// Transformer MLP block with residual: x + fc2(act(fc1(LN(x)))).
/// fc1/fc2 are the TFC layers of paper Fig. 8(d) — TASD-A eligible.
class TokenMlpBlockLayer final : public Layer {
 public:
  TokenMlpBlockLayer(Index dim, Index hidden, ActKind act, Rng& rng);

  Feature forward(const Feature& in) override;
  void collect_gemm_layers(std::vector<GemmLayer*>& out) override;

 private:
  std::unique_ptr<LinearLayer> fc1_, fc2_;
};

/// Mean-pool tokens: (features x tokens) -> (features x 1).
class TokenMeanPoolLayer final : public Layer {
 public:
  Feature forward(const Feature& in) override;
};

/// Standalone per-token LayerNorm over features.
class TokenNormLayer final : public Layer {
 public:
  Feature forward(const Feature& in) override;
};

}  // namespace tasd::dnn
