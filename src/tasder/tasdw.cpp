#include "tasder/tasdw.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "core/approx_stats.hpp"
#include "tasder/util.hpp"

namespace tasd::tasder {

namespace {

std::vector<LayerDecision> collect_decisions(dnn::Model& model) {
  std::vector<LayerDecision> out;
  for (auto* layer : model.gemm_layers()) {
    LayerDecision d;
    d.layer_name = layer->name();
    d.config = layer->tasd_w();
    if (d.config) {
      d.series_density = d.config->max_density();
      d.dropped_nnz_fraction =
          approx_stats(layer->weight(), *d.config).dropped_nnz_fraction();
    }
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace

TasdwResult tasdw_apply_uniform(dnn::Model& model, const TasdConfig& cfg,
                                const dnn::EvalSet& eval,
                                const std::vector<Index>& reference) {
  for (auto* layer : model.gemm_layers()) layer->set_tasd_w(cfg);
  TasdwResult r;
  r.strategy = "network-wise " + cfg.str();
  r.achieved_agreement = dnn::top1_agreement(model, eval, reference);
  r.mac_fraction = model_slot_mac_fraction(model);
  r.decisions = collect_decisions(model);
  return r;
}

TasdwResult tasdw_network_wise(dnn::Model& model, const HwProfile& hw,
                               const dnn::EvalSet& eval,
                               const std::vector<Index>& reference,
                               const TasdwOptions& opt) {
  // Candidates come most-aggressive-first; the first one that satisfies
  // the quality rule wins (paper: exhaustive search is feasible because
  // the config count is small).
  for (const auto& cfg : hw.candidate_configs()) {
    TasdwResult r = tasdw_apply_uniform(model, cfg, eval, reference);
    if (r.achieved_agreement >= opt.quality_threshold) return r;
  }
  // Nothing met the bar: leave the model dense.
  model.clear_tasd();
  TasdwResult r;
  r.strategy = "network-wise (none valid)";
  r.achieved_agreement = dnn::top1_agreement(model, eval, reference);
  r.mac_fraction = 1.0;
  r.decisions = collect_decisions(model);
  return r;
}

TasdwResult tasdw_layer_wise(dnn::Model& model, const HwProfile& hw,
                             const dnn::EvalSet& eval,
                             const std::vector<Index>& reference,
                             const TasdwOptions& opt) {
  auto layers = model.gemm_layers();
  const auto configs = hw.candidate_configs();

  // Step 1 (paper): measure dropped-non-zero fraction for every
  // (layer, config) pair.
  struct Pair {
    dnn::GemmLayer* layer;
    const TasdConfig* cfg;
    double dropped;
    double density;
  };
  std::vector<Pair> pairs;
  pairs.reserve(layers.size() * configs.size());
  for (auto* layer : layers) {
    for (const auto& cfg : configs) {
      const auto stats = approx_stats(layer->weight(), cfg);
      pairs.push_back(
          {layer, &cfg, stats.dropped_nnz_fraction(), cfg.max_density()});
    }
  }
  // Step 2: sort by dropped fraction (smallest first); break ties toward
  // the sparser (more beneficial) config, then by layer name for
  // determinism.
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    if (a.dropped != b.dropped) return a.dropped < b.dropped;
    if (a.density != b.density) return a.density < b.density;
    return a.layer->name() < b.layer->name();
  });
  // Drop pairs that would *densify* an earlier, sparser decision for the
  // same layer: once a layer reaches density d at dropped-cost c, any
  // later pair with higher density is never an improvement.
  {
    std::vector<Pair> filtered;
    for (const auto& p : pairs) {
      bool dominated = false;
      for (auto it = filtered.rbegin(); it != filtered.rend(); ++it) {
        if (it->layer == p.layer) {
          dominated = it->density <= p.density;
          break;
        }
      }
      if (!dominated) filtered.push_back(p);
    }
    pairs = std::move(filtered);
  }

  // Step 3: greedily apply the sorted prefix while quality holds. Applying
  // prefix length L means: for each layer, the *last* pair within the
  // prefix that touches it is in force. Quality degrades monotonically in
  // L, so the longest valid prefix can be found by binary search.
  auto apply_prefix = [&](std::size_t len) {
    for (auto* layer : layers) layer->set_tasd_w(std::nullopt);
    for (std::size_t i = 0; i < len; ++i)
      pairs[i].layer->set_tasd_w(*pairs[i].cfg);
  };
  auto quality_of_prefix = [&](std::size_t len) {
    apply_prefix(len);
    return dnn::top1_agreement(model, eval, reference);
  };

  std::size_t best = 0;
  if (opt.binary_search_prefix) {
    std::size_t lo = 0;
    std::size_t hi = pairs.size();
    // Invariant: prefix `lo` is valid, `hi+1` unknown/invalid.
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo + 1) / 2;
      if (quality_of_prefix(mid) >= opt.quality_threshold) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    best = lo;
  } else {
    // Exact paper order: stop at the first violation.
    for (std::size_t len = 1; len <= pairs.size(); ++len) {
      if (quality_of_prefix(len) < opt.quality_threshold) break;
      best = len;
    }
  }

  apply_prefix(best);
  TasdwResult r;
  r.strategy = "layer-wise";
  r.achieved_agreement = dnn::top1_agreement(model, eval, reference);
  r.mac_fraction = model_slot_mac_fraction(model);
  r.decisions = collect_decisions(model);
  TASD_INFO("tasdw_layer_wise: applied " << best << "/" << pairs.size()
                                         << " pairs, agreement "
                                         << r.achieved_agreement);
  return r;
}

}  // namespace tasd::tasder
