#include "runtime/gemm_dispatch.hpp"

#include <algorithm>
#include <map>

#include "common/cpu_features.hpp"
#include "common/error.hpp"
#include "common/sync.hpp"
#include "tensor/gemm_ref.hpp"

#ifdef TASD_HAVE_AVX2_KERNELS
#include "runtime/kernels_avx2.hpp"
#endif
#ifdef TASD_HAVE_AVX512_KERNELS
#include "runtime/kernels_avx512.hpp"
#endif

namespace tasd::rt {

ThreadPool& resolve_pool(const ExecPolicy& policy) {
  return policy.pool ? *policy.pool : default_pool();
}

// ------------------------------------------------------ row-range cores

void dense_gemm_tile(const MatrixF& a, const MatrixF& b, MatrixF& c,
                     Index row_begin, Index row_end, Index col_begin,
                     Index col_end) {
  const Index k = a.cols(), n = b.cols();
  // j-tile sized to keep the C row segment plus four B row segments in
  // L1 while streaming; per-element accumulation order (k ascending,
  // 4-wide) is independent of the tile size.
  constexpr Index kTileN = 512;
  for (Index i = row_begin; i < row_end; ++i) {
    float* __restrict crow = c.data() + i * n;
    const float* arow = a.data() + i * k;
    for (Index jt = col_begin; jt < col_end; jt += kTileN) {
      const Index je = std::min(col_end, jt + kTileN);
      Index p = 0;
      for (; p + 4 <= k; p += 4) {
        const float a0 = arow[p], a1 = arow[p + 1];
        const float a2 = arow[p + 2], a3 = arow[p + 3];
        const float* __restrict b0 = b.data() + p * n;
        const float* __restrict b1 = b0 + n;
        const float* __restrict b2 = b1 + n;
        const float* __restrict b3 = b2 + n;
        for (Index j = jt; j < je; ++j)
          crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
      }
      for (; p < k; ++p) {
        const float av = arow[p];
        const float* __restrict brow = b.data() + p * n;
        for (Index j = jt; j < je; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

void nm_gemm_tile(const sparse::NMSparseMatrix& a, const MatrixF& b,
                  MatrixF& c, Index row_begin, Index row_end,
                  Index col_begin, Index col_end) {
  const Index n = b.cols();
  const auto m = static_cast<Index>(a.pattern().m);
  const auto& values = a.values();
  const auto& idx = a.in_block_index();
  const auto& offsets = a.block_offsets();
  const Index blocks_per_row = a.blocks_per_row();

  for (Index r = row_begin; r < row_end; ++r) {
    float* __restrict crow = c.data() + r * n;
    Index group = r * blocks_per_row;
    for (Index blk = 0; blk < blocks_per_row; ++blk, ++group) {
      const Index k_base = blk * m;
      for (Index s = offsets[group]; s < offsets[group + 1]; ++s) {
        const float av = values[s];
        const float* __restrict brow = b.data() + (k_base + idx[s]) * n;
        for (Index j = col_begin; j < col_end; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

void dense_gemm_rows(const MatrixF& a, const MatrixF& b, MatrixF& c,
                     Index row_begin, Index row_end) {
  dense_gemm_tile(a, b, c, row_begin, row_end, 0, b.cols());
}

void nm_gemm_rows(const sparse::NMSparseMatrix& a, const MatrixF& b,
                  MatrixF& c, Index row_begin, Index row_end) {
  nm_gemm_tile(a, b, c, row_begin, row_end, 0, b.cols());
}

// ------------------------------------------------------------- registry

struct GemmDispatch::Impl {
  mutable Mutex mutex;
  std::map<std::string, DenseKernel> dense TASD_GUARDED_BY(mutex);
  std::map<std::string, NmKernel> nm TASD_GUARDED_BY(mutex);
  std::map<std::string, DenseBatchKernel> dense_batch TASD_GUARDED_BY(mutex);
  std::map<std::string, NmBatchKernel> nm_batch TASD_GUARDED_BY(mutex);
  std::string default_dense TASD_GUARDED_BY(mutex);
  std::string default_nm TASD_GUARDED_BY(mutex);
  std::string default_dense_batch TASD_GUARDED_BY(mutex);
  std::string default_nm_batch TASD_GUARDED_BY(mutex);
};

// ------------------------------------------------- packed batch layout
// The packed batch kernels lay the batch items' columns side by side in
// one wide matrix: packed(r, off[i] + j) == item_i(r, j). Packing and
// unpacking are exact copies, and both GEMM tile cores accumulate each
// output element with a fixed k-ascending MAC order regardless of the
// column range, so running the cores on the packed pair is bit-identical
// to looping the single-RHS kernel over the items — while the inner j
// loops span the whole batch, amortizing per-k-step overhead (the whole
// point of the serving path on small per-query widths).

std::vector<Index> batch_offsets(std::span<const MatrixF> items) {
  std::vector<Index> off(items.size() + 1, 0);
  for (std::size_t i = 0; i < items.size(); ++i)
    off[i + 1] = off[i] + items[i].cols();
  return off;
}

MatrixF pack_batch(std::span<const MatrixF> items,
                   const std::vector<Index>& off) {
  const Index rows = items.empty() ? 0 : items[0].rows();
  MatrixF packed(rows, off.back());
  for (Index r = 0; r < rows; ++r) {
    float* prow = packed.data() + r * off.back();
    for (std::size_t i = 0; i < items.size(); ++i)
      std::copy_n(items[i].data() + r * items[i].cols(), items[i].cols(),
                  prow + off[i]);
  }
  return packed;
}

void unpack_batch(const MatrixF& packed, const std::vector<Index>& off,
                  std::span<MatrixF> items) {
  for (Index r = 0; r < packed.rows(); ++r) {
    const float* prow = packed.data() + r * off.back();
    for (std::size_t i = 0; i < items.size(); ++i)
      std::copy_n(prow + off[i], items[i].cols(),
                  items[i].data() + r * items[i].cols());
  }
}

namespace {

// Row grain: below this many rows per chunk the fork/join overhead beats
// the win; partitioning stays deterministic either way.
constexpr std::size_t kRowGrain = 8;

// Batch-column grain for the packed batch kernels: wide enough that the
// shared A-element loads of one k-step amortize over the tile's columns,
// small enough that a short-m batch still fans out over the pool.
constexpr Index kBatchColGrain = 128;

/// Run `tile(b, c, r0, r1, c0, c1)` over a deterministic (row-chunk,
/// batch-column-chunk) grid covering rows x [0, b.cols()).
void run_tile_grid(ThreadPool& pool, Index rows, const MatrixF& b, MatrixF& c,
                   const PackedTileFn& tile) {
  const Index total_cols = b.cols();
  if (rows == 0 || total_cols == 0) return;
  const Index row_chunks = (rows + kRowGrain - 1) / kRowGrain;
  const Index col_chunks = (total_cols + kBatchColGrain - 1) / kBatchColGrain;
  pool.parallel_for(0, row_chunks * col_chunks, 1, [&](std::size_t t0,
                                                       std::size_t t1) {
    for (std::size_t t = t0; t < t1; ++t) {
      const Index rc = t / col_chunks, cc = t % col_chunks;
      tile(b, c, rc * kRowGrain,
           std::min<Index>(rows, (rc + 1) * kRowGrain), cc * kBatchColGrain,
           std::min<Index>(total_cols, (cc + 1) * kBatchColGrain));
    }
  });
}

void dense_tiled_parallel(const MatrixF& a, const MatrixF& b, MatrixF& c,
                          ThreadPool& pool) {
  pool.parallel_for(0, a.rows(), kRowGrain,
                    [&](Index r0, Index r1) { dense_gemm_rows(a, b, c, r0, r1); });
}

void dense_tiled_serial(const MatrixF& a, const MatrixF& b, MatrixF& c,
                        ThreadPool& /*pool*/) {
  dense_gemm_rows(a, b, c, 0, a.rows());
}

void dense_reference(const MatrixF& a, const MatrixF& b, MatrixF& c,
                     ThreadPool& /*pool*/) {
  gemm_ref_accumulate(a, b, c);
}

void nm_row_parallel(const sparse::NMSparseMatrix& a, const MatrixF& b,
                     MatrixF& c, ThreadPool& pool) {
  pool.parallel_for(0, a.rows(), kRowGrain,
                    [&](Index r0, Index r1) { nm_gemm_rows(a, b, c, r0, r1); });
}

void nm_serial(const sparse::NMSparseMatrix& a, const MatrixF& b, MatrixF& c,
               ThreadPool& /*pool*/) {
  nm_gemm_rows(a, b, c, 0, a.rows());
}

void dense_batch_packed(const MatrixF& a, std::span<const MatrixF> bs,
                        std::span<MatrixF> cs, ThreadPool& pool) {
  run_packed_batch(a.rows(), bs, cs, pool,
                   [&a](const MatrixF& b, MatrixF& c, Index r0, Index r1,
                        Index c0, Index c1) {
                     dense_gemm_tile(a, b, c, r0, r1, c0, c1);
                   });
}

void dense_batch_loop(const MatrixF& a, std::span<const MatrixF> bs,
                      std::span<MatrixF> cs, ThreadPool& /*pool*/) {
  for (std::size_t i = 0; i < bs.size(); ++i)
    dense_gemm_rows(a, bs[i], cs[i], 0, a.rows());
}

void nm_batch_packed(const sparse::NMSparseMatrix& a,
                     std::span<const MatrixF> bs, std::span<MatrixF> cs,
                     ThreadPool& pool) {
  run_packed_batch(a.rows(), bs, cs, pool,
                   [&a](const MatrixF& b, MatrixF& c, Index r0, Index r1,
                        Index c0, Index c1) {
                     nm_gemm_tile(a, b, c, r0, r1, c0, c1);
                   });
}

void nm_batch_loop(const sparse::NMSparseMatrix& a,
                   std::span<const MatrixF> bs, std::span<MatrixF> cs,
                   ThreadPool& /*pool*/) {
  for (std::size_t i = 0; i < bs.size(); ++i)
    nm_gemm_rows(a, bs[i], cs[i], 0, a.rows());
}

}  // namespace

void run_packed_batch(Index rows, std::span<const MatrixF> bs,
                      std::span<MatrixF> cs, ThreadPool& pool,
                      const PackedTileFn& tile) {
  if (bs.size() == 1) {  // already one contiguous RHS: no pack/unpack
    run_tile_grid(pool, rows, bs[0], cs[0], tile);
    return;
  }
  const auto off = batch_offsets(bs);
  if (off.back() == 0) return;
  const MatrixF bp = pack_batch(bs, off);
  MatrixF cp = pack_batch({cs.data(), cs.size()}, off);
  run_tile_grid(pool, rows, bp, cp, tile);
  unpack_batch(cp, off, cs);
}

GemmDispatch::GemmDispatch() : impl_(new Impl) {
  {
    // Scoped: register_avx2_kernels below re-enters through the public
    // registration methods, which take the lock themselves.
    MutexLock lock(impl_->mutex);
    impl_->dense["tiled-parallel"] = dense_tiled_parallel;
    impl_->dense["tiled-serial"] = dense_tiled_serial;
    impl_->dense["reference"] = dense_reference;
    impl_->default_dense = "tiled-parallel";
    impl_->nm["row-parallel"] = nm_row_parallel;
    impl_->nm["serial"] = nm_serial;
    impl_->default_nm = "row-parallel";
    impl_->dense_batch["batch-packed"] = dense_batch_packed;
    impl_->dense_batch["batch-loop"] = dense_batch_loop;
    impl_->default_dense_batch = "batch-packed";
    impl_->nm_batch["batch-packed"] = nm_batch_packed;
    impl_->nm_batch["batch-loop"] = nm_batch_loop;
    impl_->default_nm_batch = "batch-packed";
  }
#ifdef TASD_HAVE_AVX2_KERNELS
  // Runtime-gated SIMD backends: registered only when the executing
  // CPU/OS can run them (and the TASD_DISABLE_* escape hatch is unset).
  // Defaults stay scalar; best_*() prefers these names when present.
  if (avx2_available()) register_avx2_kernels(*this);
#endif
#ifdef TASD_HAVE_AVX512_KERNELS
  // Gated independently of AVX2 so CI can pin either family alone.
  if (avx512_available()) register_avx512_kernels(*this);
#endif
}

GemmDispatch& GemmDispatch::instance() {
  static GemmDispatch dispatch;
  return dispatch;
}

void GemmDispatch::register_dense(const std::string& name,
                                  DenseKernel kernel) {
  TASD_CHECK_MSG(!name.empty(), "kernel name must be non-empty");
  MutexLock lock(impl_->mutex);
  impl_->dense[name] = std::move(kernel);
}

void GemmDispatch::register_nm(const std::string& name, NmKernel kernel) {
  TASD_CHECK_MSG(!name.empty(), "kernel name must be non-empty");
  MutexLock lock(impl_->mutex);
  impl_->nm[name] = std::move(kernel);
}

void GemmDispatch::register_dense_batch(const std::string& name,
                                        DenseBatchKernel kernel) {
  TASD_CHECK_MSG(!name.empty(), "kernel name must be non-empty");
  MutexLock lock(impl_->mutex);
  impl_->dense_batch[name] = std::move(kernel);
}

void GemmDispatch::register_nm_batch(const std::string& name,
                                     NmBatchKernel kernel) {
  TASD_CHECK_MSG(!name.empty(), "kernel name must be non-empty");
  MutexLock lock(impl_->mutex);
  impl_->nm_batch[name] = std::move(kernel);
}

void GemmDispatch::set_default_dense(const std::string& name) {
  MutexLock lock(impl_->mutex);
  TASD_CHECK_MSG(impl_->dense.contains(name),
                 "unknown dense kernel '" << name << "'");
  impl_->default_dense = name;
}

void GemmDispatch::set_default_nm(const std::string& name) {
  MutexLock lock(impl_->mutex);
  TASD_CHECK_MSG(impl_->nm.contains(name),
                 "unknown N:M kernel '" << name << "'");
  impl_->default_nm = name;
}

void GemmDispatch::set_default_dense_batch(const std::string& name) {
  MutexLock lock(impl_->mutex);
  TASD_CHECK_MSG(impl_->dense_batch.contains(name),
                 "unknown dense batch kernel '" << name << "'");
  impl_->default_dense_batch = name;
}

void GemmDispatch::set_default_nm_batch(const std::string& name) {
  MutexLock lock(impl_->mutex);
  TASD_CHECK_MSG(impl_->nm_batch.contains(name),
                 "unknown N:M batch kernel '" << name << "'");
  impl_->default_nm_batch = name;
}

std::vector<std::string> GemmDispatch::dense_kernels() const {
  MutexLock lock(impl_->mutex);
  std::vector<std::string> names;
  names.reserve(impl_->dense.size());
  for (const auto& [name, _] : impl_->dense) names.push_back(name);
  return names;
}

std::vector<std::string> GemmDispatch::nm_kernels() const {
  MutexLock lock(impl_->mutex);
  std::vector<std::string> names;
  names.reserve(impl_->nm.size());
  for (const auto& [name, _] : impl_->nm) names.push_back(name);
  return names;
}

std::vector<std::string> GemmDispatch::dense_batch_kernels() const {
  MutexLock lock(impl_->mutex);
  std::vector<std::string> names;
  names.reserve(impl_->dense_batch.size());
  for (const auto& [name, _] : impl_->dense_batch) names.push_back(name);
  return names;
}

std::vector<std::string> GemmDispatch::nm_batch_kernels() const {
  MutexLock lock(impl_->mutex);
  std::vector<std::string> names;
  names.reserve(impl_->nm_batch.size());
  for (const auto& [name, _] : impl_->nm_batch) names.push_back(name);
  return names;
}

std::string GemmDispatch::default_dense() const {
  MutexLock lock(impl_->mutex);
  return impl_->default_dense;
}

std::string GemmDispatch::default_nm() const {
  MutexLock lock(impl_->mutex);
  return impl_->default_nm;
}

std::string GemmDispatch::default_dense_batch() const {
  MutexLock lock(impl_->mutex);
  return impl_->default_dense_batch;
}

std::string GemmDispatch::default_nm_batch() const {
  MutexLock lock(impl_->mutex);
  return impl_->default_nm_batch;
}

// The static fallback chain: widest registered SIMD family first
// (avx512 > avx2), the scalar registry default last. Per-layer
// autotuning (runtime/autotune.hpp) refines this by measurement; these
// remain the kStatic binding and the tuning fallback on a host-signature
// mismatch.
std::string GemmDispatch::best_dense() const {
  MutexLock lock(impl_->mutex);
  if (impl_->dense.contains("dense-avx512")) return "dense-avx512";
  if (impl_->dense.contains("dense-avx2")) return "dense-avx2";
  return impl_->default_dense;
}

std::string GemmDispatch::best_nm() const {
  MutexLock lock(impl_->mutex);
  if (impl_->nm.contains("nm-avx512")) return "nm-avx512";
  if (impl_->nm.contains("nm-avx2")) return "nm-avx2";
  return impl_->default_nm;
}

std::string GemmDispatch::best_dense_batch() const {
  MutexLock lock(impl_->mutex);
  if (impl_->dense_batch.contains("dense-batch-avx512"))
    return "dense-batch-avx512";
  if (impl_->dense_batch.contains("dense-batch-avx2")) return "dense-batch-avx2";
  return impl_->default_dense_batch;
}

std::string GemmDispatch::best_nm_batch() const {
  MutexLock lock(impl_->mutex);
  if (impl_->nm_batch.contains("nm-batch-avx512")) return "nm-batch-avx512";
  if (impl_->nm_batch.contains("nm-batch-avx2")) return "nm-batch-avx2";
  return impl_->default_nm_batch;
}

DenseKernel GemmDispatch::dense(const std::string& name) const {
  MutexLock lock(impl_->mutex);
  const std::string& key = name.empty() ? impl_->default_dense : name;
  const auto it = impl_->dense.find(key);
  TASD_CHECK_MSG(it != impl_->dense.end(),
                 "unknown dense kernel '" << key << "'");
  return it->second;
}

NmKernel GemmDispatch::nm(const std::string& name) const {
  MutexLock lock(impl_->mutex);
  const std::string& key = name.empty() ? impl_->default_nm : name;
  const auto it = impl_->nm.find(key);
  TASD_CHECK_MSG(it != impl_->nm.end(),
                 "unknown N:M kernel '" << key << "'");
  return it->second;
}

DenseBatchKernel GemmDispatch::dense_batch(const std::string& name) const {
  MutexLock lock(impl_->mutex);
  const std::string& key = name.empty() ? impl_->default_dense_batch : name;
  const auto it = impl_->dense_batch.find(key);
  TASD_CHECK_MSG(it != impl_->dense_batch.end(),
                 "unknown dense batch kernel '" << key << "'");
  return it->second;
}

NmBatchKernel GemmDispatch::nm_batch(const std::string& name) const {
  MutexLock lock(impl_->mutex);
  const std::string& key = name.empty() ? impl_->default_nm_batch : name;
  const auto it = impl_->nm_batch.find(key);
  TASD_CHECK_MSG(it != impl_->nm_batch.end(),
                 "unknown N:M batch kernel '" << key << "'");
  return it->second;
}

}  // namespace tasd::rt
