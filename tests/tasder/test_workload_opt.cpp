#include "tasder/workload_opt.hpp"

#include <gtest/gtest.h>

#include "core/approx_stats.hpp"

namespace tasd::tasder {
namespace {

TEST(WorkloadOpt, PlainExecutionsCarryNoConfigs) {
  const auto net = dnn::resnet50_workload(true, 42);
  const auto execs = plain_executions(net);
  ASSERT_EQ(execs.size(), net.layers.size());
  for (const auto& e : execs) {
    EXPECT_FALSE(e.weight_cfg.has_value());
    EXPECT_FALSE(e.act_cfg.has_value());
  }
}

TEST(WorkloadOpt, EmptyHwProfileYieldsPlain) {
  const auto net = dnn::resnet50_workload(true, 42);
  const auto hw = hw_profile_from(accel::ArchConfig::dense_tc());
  const auto execs = optimize_workload(net, hw);
  for (const auto& e : execs) EXPECT_FALSE(e.weight_cfg || e.act_cfg);
}

TEST(WorkloadOpt, SparseWeightsGetTasdW) {
  const auto net = dnn::resnet50_workload(true, 42);
  const auto hw = hw_profile_from(accel::ArchConfig::ttc_vegeta_m8());
  const auto execs = optimize_workload(net, hw);
  Index with_w = 0;
  for (const auto& e : execs) {
    EXPECT_FALSE(e.act_cfg.has_value());  // never both / wrong mode
    if (e.weight_cfg) {
      ++with_w;
      ASSERT_TRUE(e.weight_kept_fraction.has_value());
      EXPECT_LE(*e.weight_kept_fraction, e.weight_cfg->max_density() + 1e-9);
    }
  }
  // The 95 %-sparse profile should make nearly every layer convertible.
  EXPECT_GT(with_w, execs.size() * 3 / 4);
}

TEST(WorkloadOpt, DropBudgetRespected) {
  const auto net = dnn::resnet50_workload(true, 42);
  const auto hw = hw_profile_from(accel::ArchConfig::ttc_vegeta_m8());
  WorkloadOptOptions opt;
  opt.weight_drop_budget = 0.02;
  const auto execs = optimize_workload(net, hw, opt);
  // Spot-check a few layers: the chosen config's actual dropped fraction
  // is within budget.
  int checked = 0;
  for (const auto& e : execs) {
    if (!e.weight_cfg || checked >= 5) continue;
    const MatrixF w = dnn::materialize_weight(e.layer);
    const auto stats = approx_stats(w, *e.weight_cfg);
    EXPECT_LE(stats.dropped_nnz_fraction(), opt.weight_drop_budget + 1e-9);
    ++checked;
  }
  EXPECT_EQ(checked, 5);
}

TEST(WorkloadOpt, TighterBudgetIsLessAggressive) {
  const auto net = dnn::resnet50_workload(true, 42);
  const auto hw = hw_profile_from(accel::ArchConfig::ttc_vegeta_m8());
  WorkloadOptOptions loose;
  loose.weight_drop_budget = 0.10;
  WorkloadOptOptions tight;
  tight.weight_drop_budget = 0.001;
  const auto e_loose = optimize_workload(net, hw, loose);
  const auto e_tight = optimize_workload(net, hw, tight);
  double d_loose = 0.0, d_tight = 0.0;
  for (std::size_t i = 0; i < e_loose.size(); ++i) {
    d_loose += e_loose[i].weight_cfg ? e_loose[i].weight_cfg->max_density()
                                     : 1.0;
    d_tight += e_tight[i].weight_cfg ? e_tight[i].weight_cfg->max_density()
                                     : 1.0;
  }
  EXPECT_LE(d_loose, d_tight);
}

TEST(WorkloadOpt, DenseReluNetGetsTasdA) {
  const auto net = dnn::resnet50_workload(false, 42);
  const auto hw = hw_profile_from(accel::ArchConfig::ttc_vegeta_m8());
  const auto execs = optimize_workload(net, hw);
  Index with_a = 0;
  for (const auto& e : execs) {
    EXPECT_FALSE(e.weight_cfg.has_value());
    if (e.act_cfg) ++with_a;
  }
  EXPECT_GT(with_a, 0u);
  // The stem (dense image input) must not be decomposed.
  EXPECT_FALSE(execs.front().act_cfg.has_value());
}

TEST(WorkloadOpt, GeluNetUsesPseudoDensityForTasdA) {
  const auto net = dnn::bert_workload(false, 42);
  const auto hw = hw_profile_from(accel::ArchConfig::ttc_vegeta_m8());
  const auto execs = optimize_workload(net, hw);
  Index with_a = 0;
  for (const auto& e : execs)
    if (e.act_cfg) ++with_a;
  // GELU activations are dense but skewed: pseudo-density enables TASD-A.
  EXPECT_GT(with_a, 0u);
}

TEST(WorkloadOpt, NoTasdUnitsDisablesTasdA) {
  const auto net = dnn::resnet50_workload(false, 42);
  const auto hw = hw_profile_from(accel::ArchConfig::vegeta_m8_no_tasd());
  const auto execs = optimize_workload(net, hw);
  for (const auto& e : execs) EXPECT_FALSE(e.act_cfg.has_value());
}

TEST(WorkloadOpt, StcM4LimitedToSingle24) {
  const auto net = dnn::resnet50_workload(true, 42);
  const auto hw = hw_profile_from(accel::ArchConfig::ttc_stc_m4());
  const auto execs = optimize_workload(net, hw);
  for (const auto& e : execs) {
    if (e.weight_cfg) EXPECT_EQ(e.weight_cfg->str(), "2:4");
  }
}

}  // namespace
}  // namespace tasd::tasder
