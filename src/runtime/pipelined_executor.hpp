// Pipelined schedule-aware execution over a CompiledNetwork artifact.
//
// The sequential whole-network paths (CompiledNetwork::run_network /
// run_network_batch) put a full barrier after every layer: all batch
// items finish layer L before any item starts layer L+1, and every
// barrier is a thread-pool fork/join. At serving widths (query_cols=1,
// the GEMV regime where BENCH_serving.json found the dense-avx2 vs TASD
// crossover) the kernels are so small that those per-layer fork/joins
// dominate and the pool sits idle between layers.
//
// PipelinedExecutor replaces the barriers with an explicit schedule
// (common/parallel.hpp TaskGraph) derived from the artifact's layer
// bindings at construction. The batch is split into one contiguous
// chunk per pool worker (a chunk is a single item when workers >=
// items); the schedule has one node per (chunk, layer) and one
// dependency edge per chunk from its layer L-1 node. Independent nodes
// run concurrently, so layer L+1 of chunk c overlaps layer L of chunk
// c+1 — software pipelining across batch items — and one batch costs a
// single pool fork/join instead of one per layer. Within a chunk each
// node runs the artifact's packed batch kernel, so the per-layer
// weight-traversal cost (the dominant cost at GEMV widths) is still
// amortized over the chunk's items.
//
// Contract (see docs/executor.md):
//  * Bit-exactness — the schedule reorders *which* independent (chunk,
//    layer) tasks run concurrently, never the accumulation order inside
//    a kernel: each node executes the artifact's own bound batch kernel
//    (CompiledNetwork::run_batch) on its chunk, and the registry's
//    batched-equals-looped contract makes any partition of the batch
//    bit-identical to the whole. run_batch() therefore equals
//    run_network_batch() — and looping run_network() per item — bit for
//    bit at every thread count, batch size, and chunking.
//  * Double-buffered activations — each in-flight chunk owns two
//    activation buffers, ping-ponged between consecutive layers: layer
//    L reads one and writes the other, so no node ever reads a buffer
//    another node is writing, and memory stays at two activation sets
//    per chunk regardless of network depth.
//  * Degenerate schedules — a single-layer network, a single-item
//    batch, or a serial pool admits no overlap (pipelining_is_noop());
//    run_batch falls back to the sequential path, which executes the
//    same arithmetic.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "runtime/compiled_network.hpp"

namespace tasd::rt {

/// Schedule-aware executor over an immutable artifact. Holds a
/// reference: the CompiledNetwork must outlive the executor.
class PipelinedExecutor {
 public:
  /// Derives the layer-dependency schedule from `net`'s bindings.
  /// Throws tasd::Error unless the artifact's layers form a chain
  /// (layer L's k == layer L-1's m — see CompiledNetwork::is_chain).
  explicit PipelinedExecutor(const CompiledNetwork& net);

  [[nodiscard]] const CompiledNetwork& network() const { return net_; }

  /// One node of the explicit schedule: execute `layer` on batch chunk
  /// `chunk` once every node in `deps` has finished.
  struct ScheduleNode {
    std::size_t chunk = 0;
    std::size_t layer = 0;
    std::vector<std::size_t> deps;  ///< indices into the schedule vector
  };

  /// The contiguous [begin, end) item ranges run_batch would pipeline
  /// for `items` batch items: min(items, pool workers) balanced chunks
  /// (every chunk is a single item once workers >= items), or one chunk
  /// when the schedule is a no-op.
  [[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> chunks(
      std::size_t items) const;

  /// The explicit schedule run_batch would execute for `items` batch
  /// items: nodes in submission order (chunk-major), one chain edge per
  /// (chunk, layer > 0). Exposed for tests and tooling; run_batch
  /// executes exactly this graph.
  [[nodiscard]] std::vector<ScheduleNode> schedule(std::size_t items) const;

  /// True when the schedule admits no inter-task overlap: fewer than two
  /// items, fewer than two layers, or a serial pool. run_batch then uses
  /// the sequential path directly.
  [[nodiscard]] bool pipelining_is_noop(std::size_t items) const;

  /// Sequential whole-network forward of one input — delegates to
  /// CompiledNetwork::run_network (the reference path).
  [[nodiscard]] MatrixF run(const MatrixF& input) const;

  /// Execute the batch through the pipelined schedule. Output is
  /// bit-identical to net.run_network_batch(inputs) — and to looping
  /// run() per item — at every thread count and batch size; ragged
  /// item widths are allowed.
  [[nodiscard]] std::vector<MatrixF> run_batch(
      std::span<const MatrixF> inputs) const;

 private:
  const CompiledNetwork& net_;
};

/// compile() + measure() with plan prewarm overlapped with the first
/// measurement pass: a TaskGraph runs one prewarm node per configured
/// layer (the layer's one decomposition, through the process-wide
/// PlanCache) concurrently with a serialized chain of per-layer
/// measurement nodes, so later layers decompose while earlier layers
/// are being timed instead of strictly before. The returned artifact is
/// compiled after the graph drains and finds every plan cached — the
/// compile-once contract (zero decompositions at execution, at most one
/// per layer overall) is unchanged.
///
/// Measurement semantics differ from CompiledNetwork::measure() in one
/// documented way: each timed kernel runs single-threaded (its
/// parallel_for runs inline inside the graph) while spare workers
/// decompose upcoming layers — per-layer times are serial costs, so
/// absolute numbers are larger at num_threads > 1 but the dense/TASD
/// ratios and cross-layer rankings Fig. 16 consumes are preserved.
/// Requires opt.measure.use_plan_cache (the cache is how prewarmed
/// plans reach the compile step).
struct CompileMeasureResult {
  CompiledNetwork network;
  std::vector<LayerTiming> timings;
};

CompileMeasureResult compile_and_measure(
    const dnn::NetworkWorkload& net,
    const std::vector<std::optional<TasdConfig>>& configs,
    const CompileOptions& opt = {});

}  // namespace tasd::rt
