#include "common/cpu_features.hpp"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace tasd {

#if defined(__x86_64__) || defined(__i386__)

namespace {

// XGETBV(0) without requiring -mxsave at compile time; only executed
// after CPUID confirms OSXSAVE.
unsigned long long read_xcr0() {
  unsigned int eax = 0, edx = 0;
  __asm__ volatile(".byte 0x0f, 0x01, 0xd0"  // xgetbv
                   : "=a"(eax), "=d"(edx)
                   : "c"(0));
  return (static_cast<unsigned long long>(edx) << 32) | eax;
}

}  // namespace

CpuFeatures detect_cpu_features() {
  CpuFeatures f;
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return f;
  f.fma = (ecx & bit_FMA) != 0;
  const bool osxsave = (ecx & bit_OSXSAVE) != 0;
  // XCR0 bits 1 (SSE) and 2 (AVX): the OS context-switches YMM state.
  f.os_ymm = osxsave && (read_xcr0() & 0x6) == 0x6;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx))
    f.avx2 = (ebx & bit_AVX2) != 0;
  return f;
}

#else

CpuFeatures detect_cpu_features() { return {}; }

#endif

bool avx2_enabled(const CpuFeatures& features, bool disabled_by_env) {
  return features.avx2_usable() && !disabled_by_env;
}

bool avx2_disabled_by_env() {
  const char* v = std::getenv("TASD_DISABLE_AVX2");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

bool avx2_available() {
  static const bool available =
      avx2_enabled(detect_cpu_features(), avx2_disabled_by_env());
  return available;
}

}  // namespace tasd
