// Compressed N:M structured sparse matrix.
//
// Storage mirrors what real structured-sparse hardware consumes (e.g.
// NVIDIA sparse tensor core metadata): for every M-aligned block we keep at
// most N (value, in-block-index) pairs. Unlike the hardware format we keep
// a per-block count so patterns with fewer than N non-zeros compress
// further; the metadata bit cost model in src/accel/ charges the full
// ceil(log2(M))*N bits the way hardware would.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/pattern.hpp"
#include "tensor/matrix.hpp"

namespace tasd::sparse {

/// Compressed N:M matrix. Immutable after construction.
class NMSparseMatrix {
 public:
  NMSparseMatrix() = default;

  /// Compress `dense`, which must satisfy `pattern` (throws otherwise —
  /// use nm_view()/decomposition to make a conforming matrix first).
  NMSparseMatrix(const MatrixF& dense, NMPattern pattern);

  /// Assemble from pre-compressed storage (the direct-compression
  /// decomposition path builds these arrays without a dense
  /// intermediate). The arrays must obey the grouping invariant
  /// documented on the accessors below; sizes are checked.
  static NMSparseMatrix from_parts(NMPattern pattern, Index rows, Index cols,
                                   std::vector<float> values,
                                   std::vector<std::uint8_t> in_block_index,
                                   std::vector<Index> block_offsets);

  [[nodiscard]] const NMPattern& pattern() const { return pattern_; }
  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }

  /// Number of stored non-zeros.
  [[nodiscard]] Index nnz() const { return values_.size(); }

  /// Sparsity degree of the stored matrix (fraction of zeros).
  [[nodiscard]] double sparsity() const;

  /// Decompress back to dense (exact: compression stores values verbatim).
  [[nodiscard]] MatrixF to_dense() const;

  /// Storage footprint in bytes under a hardware-style encoding:
  /// 4B per retained slot (N slots per block whether used or not) plus
  /// metadata bits (N * ceil(log2(M)) bits per block, rounded up per row).
  [[nodiscard]] Index storage_bytes() const;

  /// Dense storage footprint for comparison.
  [[nodiscard]] Index dense_bytes() const { return rows_ * cols_ * 4; }

  // --- low-level access for the compressed GEMM kernels ---

  /// Number of M-aligned blocks per row.
  [[nodiscard]] Index blocks_per_row() const { return blocks_per_row_; }

  /// values / in-block column offsets, grouped per (row, block) with
  /// block_offsets delimiting groups: group g spans
  /// [block_offsets[g], block_offsets[g+1]).
  [[nodiscard]] const std::vector<float>& values() const { return values_; }
  [[nodiscard]] const std::vector<std::uint8_t>& in_block_index() const {
    return in_block_index_;
  }
  [[nodiscard]] const std::vector<Index>& block_offsets() const {
    return block_offsets_;
  }

 private:
  NMPattern pattern_{};
  Index rows_ = 0;
  Index cols_ = 0;
  Index blocks_per_row_ = 0;
  std::vector<float> values_;
  std::vector<std::uint8_t> in_block_index_;
  std::vector<Index> block_offsets_;  // (rows*blocks_per_row)+1 entries
};

}  // namespace tasd::sparse
