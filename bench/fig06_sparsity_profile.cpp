// Figure 6: per-layer weight and activation sparsity of the 95 %
// unstructured-sparse ResNet-50.
//
// Two views are printed: the full-scale workload profile (what the
// accelerator model consumes) and a measured profile from the scaled-down
// twin model (weights magnitude-pruned, activations recorded from real
// ReLU forwards on calibration data).
#include <iostream>

#include "common/table.hpp"
#include "dnn/builders.hpp"
#include "dnn/calib.hpp"
#include "dnn/pruning.hpp"
#include "dnn/workloads.hpp"

using namespace tasd;

int main() {
  print_banner("Figure 6: per-layer sparsity, 95% sparse ResNet-50");

  {
    std::cout << "Full-scale workload profile (every 4th layer shown):\n";
    const auto net = dnn::resnet50_workload(true, 42);
    TextTable t;
    t.header({"layer", "weight sparsity", "activation sparsity"});
    for (std::size_t i = 0; i < net.layers.size(); i += 4) {
      const auto& l = net.layers[i];
      t.row({l.name, TextTable::pct(1.0 - l.weight_density),
             TextTable::pct(1.0 - l.act_density)});
    }
    t.print();
  }

  {
    std::cout << "\nMeasured on the scaled-down twin (32x32, width 0.25):\n";
    dnn::ConvNetOptions o;
    o.input_hw = 32;
    o.width_mult = 0.25;
    o.num_classes = 100;
    dnn::Model model = dnn::make_resnet(50, o);
    const double achieved = dnn::prune_unstructured(model, 0.95);
    const auto calib = dnn::EvalSet::images(16, 32, 3, 7);
    (void)dnn::collect_calibration(model, calib);
    const auto rows = dnn::sparsity_report(model);
    TextTable t;
    t.header({"layer", "weight sparsity", "activation sparsity"});
    for (std::size_t i = 0; i < rows.size(); i += 4) {
      t.row({rows[i].name, TextTable::pct(rows[i].weight_sparsity),
             TextTable::pct(rows[i].act_sparsity)});
    }
    t.print();
    std::cout << "\nachieved global weight sparsity: "
              << TextTable::pct(achieved)
              << " (paper model: 95%)\n"
              << "Paper shape check: early layers pruned less; weight "
                 "sparsity 80-98% mid-network;\nactivation sparsity "
                 "fluctuates in the 20-80% band.\n";
  }
  return 0;
}
