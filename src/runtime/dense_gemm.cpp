#include "runtime/dense_gemm.hpp"

#include "common/error.hpp"

namespace tasd::rt {

MatrixF dense_gemm(const MatrixF& a, const MatrixF& b,
                   const ExecPolicy& policy) {
  MatrixF c(a.rows(), b.cols());
  dense_gemm_accumulate(a, b, c, policy);
  return c;
}

void dense_gemm_accumulate(const MatrixF& a, const MatrixF& b, MatrixF& c,
                           const ExecPolicy& policy) {
  TASD_CHECK_MSG(a.cols() == b.rows(), "GEMM inner dim mismatch");
  TASD_CHECK(c.rows() == a.rows() && c.cols() == b.cols());
  GemmDispatch::instance().dense(policy.dense_kernel)(a, b, c,
                                                      resolve_pool(policy));
}

std::vector<MatrixF> dense_gemm_batch(const MatrixF& a,
                                      std::span<const MatrixF> bs,
                                      const ExecPolicy& policy) {
  std::vector<MatrixF> cs;
  cs.reserve(bs.size());
  for (const MatrixF& b : bs) cs.emplace_back(a.rows(), b.cols());
  dense_gemm_batch_accumulate(a, bs, cs, policy);
  return cs;
}

void dense_gemm_batch_accumulate(const MatrixF& a, std::span<const MatrixF> bs,
                                 std::span<MatrixF> cs,
                                 const ExecPolicy& policy) {
  TASD_CHECK_MSG(bs.size() == cs.size(), "batch GEMM item count mismatch");
  for (std::size_t i = 0; i < bs.size(); ++i) {
    TASD_CHECK_MSG(a.cols() == bs[i].rows(),
                   "batch GEMM inner dim mismatch at item " << i);
    TASD_CHECK(cs[i].rows() == a.rows() && cs[i].cols() == bs[i].cols());
  }
  if (bs.empty()) return;
  GemmDispatch::instance().dense_batch(policy.dense_batch_kernel)(
      a, bs, cs, resolve_pool(policy));
}

}  // namespace tasd::rt
