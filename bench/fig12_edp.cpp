// Figure 12: normalized energy-delay product for the four workloads on
// the six hardware designs (lower is better; dense TC = 1.0).
//
// Paper reference points: DSTC worsens EDP on dense workloads (+12 % /
// +167 % for dense RN50/BERT) but wins big on doubly-sparse RN50 (-87 %);
// every TTC variant improves on TC; TTC-VEGETA-M8 reaches ~-83 % on
// sparse RN50 and ~-58 %/-61 % on the dense workloads; overall geomean
// improvement ~70 %.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace tasd;

int main() {
  print_banner("Figure 12: normalized EDP (dense TC = 1.0, lower is better)");

  const auto workloads = bench::paper_workloads();
  const auto designs = accel::ArchConfig::paper_designs();

  // Also print Table 3 (design roster) as the figure legend.
  {
    TextTable t3;
    t3.header({"HW design", "sparsity support"});
    t3.row({"TC", "none (dense)"});
    t3.row({"DSTC", "unstructured, dual-side"});
    t3.row({"TTC-STC-M4", "2:4 (TASD 1T)"});
    t3.row({"TTC-STC-M8", "4:8 (TASD 1T)"});
    t3.row({"TTC-VEGETA-M4", "1:4, 2:4 (1T) + 3:4 (2T)"});
    t3.row({"TTC-VEGETA-M8", "1:8, 2:8, 4:8 (1T) + 3:8, 5:8, 6:8 (2T)"});
    std::cout << "Table 3 (legend):\n";
    t3.print();
    std::cout << '\n';
  }

  TextTable table;
  std::vector<std::string> header{"workload"};
  for (const auto& d : designs) header.push_back(d.name);
  table.header(header);

  std::vector<std::vector<double>> norm(designs.size());
  for (const auto& net : workloads) {
    const auto base = bench::baseline_tc(net);
    std::vector<std::string> row{net.name};
    for (std::size_t a = 0; a < designs.size(); ++a) {
      const auto sim = bench::run_on(designs[a], net);
      const double e = accel::normalized_edp(sim, base);
      norm[a].push_back(e);
      row.push_back(TextTable::num(e, 3));
    }
    table.row(row);
  }
  std::vector<std::string> geo{"geomean"};
  for (std::size_t a = 0; a < designs.size(); ++a)
    geo.push_back(TextTable::num(accel::geomean(norm[a]), 3));
  table.row(geo);
  table.print();

  std::cout << "\nPaper shape check: DSTC > 1.0 on dense workloads, best "
               "TTC << 1.0 everywhere,\nTTC-VEGETA-M8 strongest on sparse "
               "ResNet-50 (paper: ~0.17).\n";
  return 0;
}
