// Shared helpers for the TASDER strategies.
#pragma once

#include "dnn/model.hpp"

namespace tasd::tasder {

/// Slot-MAC fraction of the model under its current TASD configuration:
/// Σ_layers density(series) * dense MACs / Σ dense MACs, where a layer's
/// series is its TASD-W or TASD-A config (dense = 1). Uses each layer's
/// last recorded GEMM dims; layers that never ran weigh by parameter
/// count.
double model_slot_mac_fraction(dnn::Model& model);

}  // namespace tasd::tasder
