#include "sparse/pattern.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace tasd::sparse {
namespace {

TEST(NMPattern, ParseRoundTrip) {
  const NMPattern p = NMPattern::parse("2:4");
  EXPECT_EQ(p.n, 2);
  EXPECT_EQ(p.m, 4);
  EXPECT_EQ(p.str(), "2:4");
}

TEST(NMPattern, ParseRejectsMalformed) {
  EXPECT_THROW(NMPattern::parse("24"), tasd::Error);
  EXPECT_THROW(NMPattern::parse("2:"), tasd::Error);
  EXPECT_THROW(NMPattern::parse(":4"), tasd::Error);
  EXPECT_THROW(NMPattern::parse("a:b"), tasd::Error);
  EXPECT_THROW(NMPattern::parse("2:4x"), tasd::Error);
  EXPECT_THROW(NMPattern::parse(""), tasd::Error);
}

TEST(NMPattern, ConstructorValidates) {
  EXPECT_THROW(NMPattern(3, 2), tasd::Error);   // N > M
  EXPECT_THROW(NMPattern(-1, 4), tasd::Error);  // negative N
  EXPECT_THROW(NMPattern(1, 0), tasd::Error);   // zero M
  EXPECT_NO_THROW(NMPattern(0, 4));             // N=0 is a valid (drop-all)
  EXPECT_NO_THROW(NMPattern(4, 4));             // dense
}

TEST(NMPattern, DensityAndApproximatedSparsity) {
  const NMPattern p(2, 8);
  EXPECT_DOUBLE_EQ(p.density(), 0.25);
  EXPECT_DOUBLE_EQ(p.approximated_sparsity(), 0.75);
  EXPECT_TRUE(NMPattern(4, 4).is_dense());
  EXPECT_FALSE(p.is_dense());
}

TEST(NMPattern, EquivalentSparsityDifferentExpressiveness) {
  // 1:4 and 2:8 share the approximated sparsity (paper §A.1) but are
  // distinct patterns.
  EXPECT_DOUBLE_EQ(NMPattern(1, 4).approximated_sparsity(),
                   NMPattern(2, 8).approximated_sparsity());
  EXPECT_NE(NMPattern(1, 4), NMPattern(2, 8));
}

TEST(Satisfies, DenseMatrixOnlyUnderDensePattern) {
  MatrixF m(2, 8, 1.0F);
  EXPECT_FALSE(satisfies(m, NMPattern(2, 4)));
  EXPECT_TRUE(satisfies(m, NMPattern(4, 4)));
  EXPECT_TRUE(satisfies(m, NMPattern(8, 8)));
}

TEST(Satisfies, CountsPerAlignedBlock) {
  // Row: [1 1 0 0 | 0 0 1 1] — 2 per 4-block: satisfies 2:4, not 1:4.
  MatrixF m(1, 8, {1, 1, 0, 0, 0, 0, 1, 1});
  EXPECT_TRUE(satisfies(m, NMPattern(2, 4)));
  EXPECT_FALSE(satisfies(m, NMPattern(1, 4)));
  // Straddling non-zeros are fine because blocks are aligned:
  // [0 0 1 1 | 1 1 0 0] also satisfies 2:4.
  MatrixF m2(1, 8, {0, 0, 1, 1, 1, 1, 0, 0});
  EXPECT_TRUE(satisfies(m2, NMPattern(2, 4)));
}

TEST(Satisfies, RaggedTailBlockChecked) {
  // cols=6, M=4: tail block has 2 elements; both non-zero violates 1:4.
  MatrixF m(1, 6, {0, 0, 0, 0, 1, 1});
  EXPECT_FALSE(satisfies(m, NMPattern(1, 4)));
  EXPECT_TRUE(satisfies(m, NMPattern(2, 4)));
}

TEST(Satisfies, ZeroMatrixSatisfiesEverything) {
  MatrixF m(4, 16);
  EXPECT_TRUE(satisfies(m, NMPattern(0, 4)));
  EXPECT_TRUE(satisfies(m, NMPattern(1, 8)));
}

TEST(CountViolatingBlocks, ExactCount) {
  // Two rows of 8 with M=4 -> 4 blocks; make 3 of them violate 1:4.
  MatrixF m(2, 8, {1, 1, 0, 0, 1, 1, 0, 0,
                   0, 0, 0, 0, 1, 1, 1, 0});
  EXPECT_EQ(count_violating_blocks(m, NMPattern(1, 4)), 3u);
  EXPECT_EQ(count_violating_blocks(m, NMPattern(3, 4)), 0u);
}

TEST(NMPattern, Ordering) {
  EXPECT_LT(NMPattern(1, 4), NMPattern(2, 4));  // lexicographic (n, m)
}

}  // namespace
}  // namespace tasd::sparse
