// Matrix serialization: CSV (interoperable, human-readable) and a raw
// binary format (fast, exact). Lets users bring their own pruned weights
// into the decomposition tools and export results for plotting.
#pragma once

#include <string>

#include "tensor/matrix.hpp"

namespace tasd {

/// Write `m` as CSV (one row per line, '%.9g' precision — lossless for
/// float32). Throws tasd::Error on I/O failure.
void save_matrix_csv(const MatrixF& m, const std::string& path);

/// Read a CSV matrix; every row must have the same column count.
MatrixF load_matrix_csv(const std::string& path);

/// Binary format: magic "TASDMAT1", u64 rows, u64 cols, float32 data
/// (little-endian, row-major). Exact round trip.
void save_matrix_binary(const MatrixF& m, const std::string& path);
MatrixF load_matrix_binary(const std::string& path);

}  // namespace tasd
