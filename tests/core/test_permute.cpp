#include "core/permute.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "tensor/gemm_ref.hpp"
#include "tensor/generator.hpp"
#include "tensor/norms.hpp"

namespace tasd {
namespace {

TEST(Permute, ApplyColumnPermutationReorders) {
  MatrixF m(2, 3, {1, 2, 3, 4, 5, 6});
  const std::vector<Index> perm{2, 0, 1};
  const MatrixF out = apply_column_permutation(m, perm);
  EXPECT_EQ(out(0, 0), 3.0F);
  EXPECT_EQ(out(0, 1), 1.0F);
  EXPECT_EQ(out(1, 2), 5.0F);
}

TEST(Permute, ApplyValidatesInput) {
  MatrixF m(2, 3);
  EXPECT_THROW(apply_column_permutation(m, {0, 1}), Error);
  EXPECT_THROW(apply_column_permutation(m, {0, 1, 9}), Error);
  EXPECT_THROW(permute_rows(m, {0}), Error);
}

TEST(Permute, PermutedGemmIsExact) {
  // A·B == A[:,p] · B[p,:] — the identity that makes the permutation free.
  Rng rng(701);
  const MatrixF a = random_unstructured(8, 16, 0.4, Dist::kNormalStd1, rng);
  const MatrixF b = random_dense(16, 5, Dist::kNormalStd1, rng);
  const auto r = find_tasd_permutation(a, TasdConfig::parse("2:4"));
  const MatrixF a_p = apply_column_permutation(a, r.perm);
  const MatrixF b_p = permute_rows(b, r.perm);
  EXPECT_TRUE(allclose(gemm_ref(a_p, b_p), gemm_ref(a, b), 1e-4, 1e-5));
}

TEST(Permute, ResultIsABijection) {
  Rng rng(702);
  const MatrixF a = random_unstructured(16, 40, 0.3, Dist::kNormalStd1, rng);
  const auto r = find_tasd_permutation(a, TasdConfig::parse("2:8"));
  ASSERT_EQ(r.perm.size(), 40u);
  auto sorted = r.perm;
  std::sort(sorted.begin(), sorted.end());
  for (Index i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Permute, NeverIncreasesDroppedNnz) {
  Rng rng(703);
  for (double density : {0.1, 0.3, 0.6}) {
    const MatrixF a =
        random_unstructured(32, 64, density, Dist::kNormalStd1, rng);
    for (const char* cfg : {"1:8", "2:8", "4:8+1:8"}) {
      const auto r = find_tasd_permutation(a, TasdConfig::parse(cfg));
      EXPECT_LE(r.after.dropped_nnz, r.before.dropped_nnz)
          << "density " << density << " cfg " << cfg;
    }
  }
}

TEST(Permute, HelpsOnColumnSkewedMatrices) {
  // Pathological case the permutation is for: all non-zeros concentrated
  // in a few adjacent columns. Balancing them across blocks should
  // rescue most of the dropped elements.
  Rng rng(704);
  MatrixF a(32, 32);
  for (Index r = 0; r < 32; ++r)
    for (Index c = 0; c < 8; ++c)  // first 8 columns dense, rest empty
      a(r, c) = static_cast<float>(rng.normal(0.0, 1.0));
  const auto result = find_tasd_permutation(a, TasdConfig::parse("2:8"));
  // Identity blocks: first block has 8 nnz, keeps 2 -> drops 6/row.
  EXPECT_GT(result.before.dropped_nnz, 0u);
  // Balanced: 2 dense columns per block -> nothing dropped.
  EXPECT_EQ(result.after.dropped_nnz, 0u);
  EXPECT_DOUBLE_EQ(result.dropped_nnz_reduction(), 1.0);
}

TEST(Permute, MixedBlockSizesRejected) {
  MatrixF a(4, 16, 1.0F);
  EXPECT_THROW(find_tasd_permutation(a, TasdConfig::parse("2:4+2:8")), Error);
}

TEST(Permute, ZeroMatrixIsTrivial) {
  MatrixF a(4, 16);
  const auto r = find_tasd_permutation(a, TasdConfig::parse("2:8"));
  EXPECT_EQ(r.after.dropped_nnz, 0u);
  EXPECT_DOUBLE_EQ(r.dropped_nnz_reduction(), 0.0);
}

TEST(Permute, RaggedColumnsSupported) {
  Rng rng(705);
  const MatrixF a = random_unstructured(8, 19, 0.5, Dist::kNormalStd1, rng);
  const auto r = find_tasd_permutation(a, TasdConfig::parse("2:8"));
  EXPECT_EQ(r.perm.size(), 19u);
  EXPECT_LE(r.after.dropped_nnz, r.before.dropped_nnz);
}

}  // namespace
}  // namespace tasd
