// Figure 14: top-1 quality vs approximated sparsity for network-wise and
// layer-wise TASD-W (upper plot) and TASD-A (lower plot) on ResNet-50.
//
// The paper's y-axis is ImageNet top-1 accuracy; ours is top-1 agreement
// with the unmodified model (DESIGN.md substitution) — the 99 % rule is
// the same in both. Paper shape: larger M holds accuracy to higher
// approximated sparsity; layer-wise dominates network-wise; TASD-A
// collapses earlier than TASD-W.
#include <iostream>

#include "common/table.hpp"
#include "core/series_enum.hpp"
#include "dnn/builders.hpp"
#include "dnn/pruning.hpp"
#include "tasder/tasda.hpp"
#include "tasder/tasdw.hpp"

using namespace tasd;

namespace {

dnn::Model make_twin(bool sparse) {
  dnn::ConvNetOptions o;
  o.input_hw = 16;
  o.width_mult = 0.25;
  o.num_classes = 100;
  dnn::Model m = dnn::make_resnet(50, o);
  if (sparse) (void)dnn::prune_unstructured(m, 0.95);
  return m;
}

/// All single-term N:M configs for a block size (the network-wise sweep).
std::vector<TasdConfig> nm_sweep(int m) {
  std::vector<TasdConfig> out;
  for (int n = 1; n < m; ++n) {
    TasdConfig cfg;
    cfg.terms.push_back(sparse::NMPattern(n, m));
    out.push_back(cfg);
  }
  return out;
}

}  // namespace

int main() {
  print_banner("Figure 14: network-wise vs layer-wise TASD on ResNet-50");

  const auto eval = dnn::EvalSet::images(128, 16, 3, 1401);
  const auto calib = dnn::EvalSet::images(16, 16, 3, 1402);

  // ---- upper plot: TASD-W on the 95 % sparse model ----
  {
    std::cout << "\n-- TASD-W (sparse ResNet-50 twin) --\n";
    dnn::Model model = make_twin(true);
    const auto ref = dnn::confident_labels(model, eval, 0.5);
    TextTable t;
    t.header({"strategy", "config", "approx sparsity", "agreement",
              "meets 99%?"});
    for (int m : {4, 8, 16}) {
      for (const auto& cfg : nm_sweep(m)) {
        model.clear_tasd();
        const auto r = tasder::tasdw_apply_uniform(model, cfg, eval, ref);
        t.row({"network-wise N:" + std::to_string(m), cfg.str(),
               TextTable::pct(cfg.approximated_sparsity()),
               TextTable::pct(r.achieved_agreement),
               r.achieved_agreement >= 0.99 ? "yes" : "no"});
      }
    }
    // Layer-wise with the N:8 pattern set.
    model.clear_tasd();
    tasder::HwProfile hw;
    hw.name = "N:8";
    hw.patterns = {sparse::NMPattern(1, 8), sparse::NMPattern(2, 8),
                   sparse::NMPattern(4, 8)};
    hw.max_terms = 2;
    hw.has_tasd_units = true;
    const auto lw = tasder::tasdw_layer_wise(model, hw, eval, ref);
    t.row({"layer-wise N:8", "per-layer",
           TextTable::pct(1.0 - lw.mac_fraction),
           TextTable::pct(lw.achieved_agreement),
           lw.achieved_agreement >= 0.99 ? "yes" : "no"});
    t.print();
  }

  // ---- lower plot: TASD-A on the dense model ----
  {
    std::cout << "\n-- TASD-A (dense ResNet-50 twin) --\n";
    dnn::Model model = make_twin(false);
    const auto ref = dnn::confident_labels(model, eval, 0.5);
    TextTable t;
    t.header({"strategy", "config", "approx sparsity", "agreement",
              "meets 99%?"});
    for (int m : {4, 8, 16}) {
      for (const auto& cfg : nm_sweep(m)) {
        model.clear_tasd();
        const auto r = tasder::tasda_apply_uniform(model, cfg, eval, ref);
        t.row({"network-wise N:" + std::to_string(m), cfg.str(),
               TextTable::pct(cfg.approximated_sparsity()),
               TextTable::pct(r.achieved_agreement),
               r.achieved_agreement >= 0.99 ? "yes" : "no"});
      }
    }
    model.clear_tasd();
    tasder::HwProfile hw;
    hw.name = "N:8";
    hw.patterns = {sparse::NMPattern(1, 8), sparse::NMPattern(2, 8),
                   sparse::NMPattern(4, 8)};
    hw.max_terms = 2;
    hw.has_tasd_units = true;
    const auto lw = tasder::tasda_layer_wise_auto(model, hw, calib, eval, ref);
    t.row({"layer-wise N:8", "per-layer",
           TextTable::pct(1.0 - lw.mac_fraction),
           TextTable::pct(lw.achieved_agreement),
           lw.achieved_agreement >= 0.99 ? "yes" : "no"});
    t.print();
  }

  std::cout << "\nPaper shape check: agreement falls as approximated "
               "sparsity rises; N:16 > N:8 > N:4 in\nretained quality at "
               "equal sparsity; TASD-A degrades at lower sparsity than "
               "TASD-W; the most\naggressive valid network-wise TASD-W is "
               "around 3:4 / 5:8 / 10:16.\n";
  return 0;
}
