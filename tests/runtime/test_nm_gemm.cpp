#include "runtime/nm_gemm.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sparse/view.hpp"
#include "tensor/gemm_ref.hpp"
#include "tensor/generator.hpp"
#include "tensor/norms.hpp"

namespace tasd::rt {
namespace {

TEST(NmGemm, MatchesDenseOnConformingMatrix) {
  Rng rng(511);
  const MatrixF a = random_nm_structured(16, 32, 2, 4, Dist::kNormalStd1, rng);
  const MatrixF b = random_dense(32, 8, Dist::kNormalStd1, rng);
  const sparse::NMSparseMatrix c(a, sparse::NMPattern(2, 4));
  EXPECT_TRUE(allclose(nm_gemm(c, b), gemm_ref(a, b), 1e-4, 1e-5));
}

TEST(NmGemm, RaggedColumnsSupported) {
  Rng rng(512);
  const MatrixF a = random_nm_structured(8, 10, 1, 4, Dist::kNormalStd1, rng);
  const MatrixF b = random_dense(10, 3, Dist::kNormalStd1, rng);
  const sparse::NMSparseMatrix c(a, sparse::NMPattern(1, 4));
  EXPECT_TRUE(allclose(nm_gemm(c, b), gemm_ref(a, b), 1e-4, 1e-5));
}

TEST(NmGemm, InnerDimMismatchThrows) {
  const sparse::NMSparseMatrix c(MatrixF(4, 8), sparse::NMPattern(2, 4));
  EXPECT_THROW(nm_gemm(c, MatrixF(9, 2)), Error);
}

TEST(TasdSeriesGemm, LosslessSeriesEqualsDense) {
  Rng rng(513);
  const MatrixF a = random_unstructured(8, 32, 0.4, Dist::kNormalStd1, rng);
  // 4:8+4:8 keeps everything.
  const auto d = decompose(a, TasdConfig::parse("4:8+4:8"));
  ASSERT_TRUE(d.lossless());
  const TasdSeriesGemm series(d);
  const MatrixF b = random_dense(32, 6, Dist::kNormalStd1, rng);
  EXPECT_TRUE(allclose(series.multiply(b), gemm_ref(a, b), 1e-4, 1e-5));
}

TEST(TasdSeriesGemm, LossyErrorMatchesFunctionalModel) {
  Rng rng(514);
  const MatrixF a = random_dense(8, 32, Dist::kNormalStd1, rng);
  const auto cfg = TasdConfig::parse("2:8");
  const auto d = decompose(a, cfg);
  const TasdSeriesGemm series(d);
  const MatrixF b = random_dense(32, 4, Dist::kNormalStd1, rng);
  // Runtime kernel result == functional tasd_gemm result.
  const MatrixF approx = gemm_ref(d.approximation(), b);
  EXPECT_TRUE(allclose(series.multiply(b), approx, 1e-4, 1e-5));
}

TEST(TasdSeriesGemm, NnzEqualsKeptElements) {
  Rng rng(515);
  const MatrixF a = random_unstructured(16, 64, 0.3, Dist::kNormalStd1, rng);
  const auto d = decompose(a, TasdConfig::parse("2:8+1:8"));
  const TasdSeriesGemm series(d);
  EXPECT_EQ(series.nnz(), a.nnz() - d.residual.nnz());
  EXPECT_EQ(series.term_count(), 2u);
}

TEST(TasdSeriesGemm, EmptyDecomposition) {
  const auto d = decompose(MatrixF(4, 8), TasdConfig::parse("2:8"));
  const TasdSeriesGemm series(d);
  const MatrixF c = series.multiply(MatrixF(8, 2));
  for (float v : c.flat()) EXPECT_EQ(v, 0.0F);
}

}  // namespace
}  // namespace tasd::rt
